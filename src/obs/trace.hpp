// trace.hpp -- per-rank event tracing for bh::mp (the observability layer).
//
// One Tracer supervises a whole SPMD run -- or a *sequence* of runs from a
// single bench binary -- and owns one RankTracer per rank. A RankTracer is a
// private, append-only event buffer written by exactly one rank thread with
// no synchronization at all, so tracing adds no locks and no sharing to the
// runtime hot paths; when tracing is off the Communicator holds a null
// pointer and records nothing. Every event carries both virtual time (the
// MachineModel clock that prices the run) and wall time (what the host
// actually spent), so one trace answers both "where did the modeled machine
// spend its time" and "where did the simulation spend ours".
//
// Event sources (see mp/runtime.cpp): phase begin/end, point-to-point
// send/recv (with peer, tag, bytes), collective enter/exit (with kind and
// contributed bytes), flop batches (coalesced so per-particle advance_flops
// calls do not explode the buffer), and free-form instants that the
// parallel formulations use to annotate funcship/dataship RPC traffic.
//
// Exports:
//  * write_chrome_trace() -- Chrome/Perfetto "trace event" JSON, one track
//    (tid) per rank: phases and collectives render as duration events,
//    sends/recvs/annotations as instants, flops as a counter series.
//  * obs/metrics.hpp -- compact structured metrics (comm matrix, per-phase
//    imbalance) derived from the RunReport.
//
// Thread contract: begin_run() and the export routines must be called while
// no rank threads are live (run_spmd takes care of begin_run); every
// RankTracer method may be called freely from its own rank's thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bh::obs {

class Tracer;

/// What one trace record describes.
enum class EventKind : std::uint8_t {
  kPhaseBegin,  ///< named phase opens (name)
  kPhaseEnd,    ///< named phase closes (name)
  kSend,        ///< point-to-point send (peer = dst, tag, value = bytes)
  kRecv,        ///< point-to-point recv (peer = src, tag, value = bytes)
  kCollBegin,   ///< collective entered (name = kind, value = bytes in)
  kCollEnd,     ///< collective released this rank
  kFlops,       ///< flop batch (value = cumulative flops so far)
  kInstant,     ///< free-form annotation (name, value = count)
};

/// One trace record. Names are interned per rank; resolve via
/// RankTracer::name().
struct Event {
  EventKind kind{};
  std::int32_t peer = -1;   ///< dst (send) / src (recv); -1 otherwise
  std::int32_t tag = -1;    ///< message tag; -1 otherwise
  std::uint32_t name = 0;   ///< interned name id; 0 = ""
  std::uint64_t value = 0;  ///< bytes / flops / count, per kind
  double vtime = 0.0;       ///< virtual seconds (offset across runs)
  double wtime = 0.0;       ///< wall seconds since the tracer's epoch
};

/// One rank's private event buffer. Never constructed directly; obtained
/// from Tracer::rank(). All methods are single-writer (the rank's thread).
class RankTracer {
 public:
  void phase_begin(std::string_view name, double vt) {
    flush(vt);
    push(EventKind::kPhaseBegin, -1, -1, intern(name), 0, vt);
  }
  void phase_end(std::string_view name, double vt) {
    flush(vt);
    push(EventKind::kPhaseEnd, -1, -1, intern(name), 0, vt);
  }
  void send(int dst, int tag, std::uint64_t bytes, double vt) {
    push(EventKind::kSend, dst, tag, 0, bytes, vt);
  }
  void recv(int src, int tag, std::uint64_t bytes, double vt) {
    push(EventKind::kRecv, src, tag, 0, bytes, vt);
  }
  void coll_begin(std::string_view kind, std::uint64_t bytes, double vt) {
    flush(vt);
    push(EventKind::kCollBegin, -1, -1, intern(kind), bytes, vt);
  }
  void coll_end(double vt) {
    push(EventKind::kCollEnd, -1, -1, 0, 0, vt);
  }
  /// Record `n` flops at virtual time `vt`. Batches internally: an event is
  /// emitted only once flop_batch() flops have accumulated (or at the next
  /// phase/collective boundary), keeping per-particle call sites cheap.
  void flops(std::uint64_t n, double vt) {
    flop_pending_ += n;
    if (flop_pending_ >= flop_batch_) flush(vt);
  }
  void instant(std::string_view name, std::uint64_t count, double vt) {
    push(EventKind::kInstant, -1, -1, intern(name), count, vt);
  }
  /// Emit any batched flops now (runtime calls this at rank exit).
  void flush(double vt) {
    if (flop_pending_ == 0) return;
    flop_total_ += flop_pending_;
    flop_pending_ = 0;
    push(EventKind::kFlops, -1, -1, 0, flop_total_, vt);
  }

  /// Register a human-readable name for a message tag (forwarded to the
  /// owning Tracer's shared registry; callable from any rank thread).
  void name_tag(int tag, std::string_view name);

  const std::vector<Event>& events() const { return events_; }
  const std::string& name(std::uint32_t id) const { return names_[id]; }
  /// Total flops recorded, including a still-pending batch.
  std::uint64_t flops_recorded() const { return flop_total_ + flop_pending_; }
  std::uint64_t flop_batch() const { return flop_batch_; }
  void set_flop_batch(std::uint64_t n) { flop_batch_ = n == 0 ? 1 : n; }

 private:
  friend class Tracer;
  explicit RankTracer(Tracer& owner) : owner_(owner), names_{""} {}
  RankTracer(const RankTracer&) = delete;

  void push(EventKind kind, int peer, int tag, std::uint32_t name,
            std::uint64_t value, double vt);
  std::uint32_t intern(std::string_view name);

  Tracer& owner_;
  std::vector<Event> events_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::uint64_t flop_pending_ = 0;
  std::uint64_t flop_total_ = 0;
  std::uint64_t flop_batch_ = std::uint64_t(1) << 20;
};

/// Owner of the per-rank buffers and the exporters. Pass one via
/// RunOptions{.trace = &tracer} to record a run; reuse the same Tracer
/// across several run_spmd calls to get one concatenated timeline (each
/// run's virtual clock is offset past the previous run's last event).
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(int nprocs) { begin_run(nprocs); }

  /// Prepare for a run on `nprocs` ranks: grows the rank table if needed
  /// and offsets subsequent virtual timestamps past everything recorded so
  /// far. Called by run_spmd; must not race with live rank threads.
  void begin_run(int nprocs);

  int nprocs() const { return static_cast<int>(ranks_.size()); }
  RankTracer& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const RankTracer& rank(int r) const {
    return *ranks_.at(static_cast<std::size_t>(r));
  }
  /// True when no rank has recorded any event.
  bool empty() const;

  /// Shared tag-name registry (thread-safe; ranks register concurrently).
  void set_tag_name(int tag, std::string name);
  /// "" when the tag was never named.
  std::string tag_name(int tag) const;

  /// Chrome/Perfetto trace-event JSON; one track (tid) per rank, virtual
  /// microseconds on the time axis, wall time in event args. A non-empty
  /// `extra_events` fragment (comma-separated event objects, e.g. the
  /// profiler's sampled stacks from prof::chrome_sample_events) is spliced
  /// verbatim into the traceEvents array after the rank tracks.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace(std::ostream& os,
                          std::string_view extra_events) const;
  std::string chrome_trace_json() const;

 private:
  friend class RankTracer;
  double wall_now() const;

  std::vector<std::unique_ptr<RankTracer>> ranks_;
  double vt_offset_ = 0.0;
  std::chrono::steady_clock::time_point epoch_{};
  bool epoch_set_ = false;
  mutable std::mutex tag_mu_;
  std::map<int, std::string> tag_names_;
};

inline void RankTracer::push(EventKind kind, int peer, int tag,
                             std::uint32_t name, std::uint64_t value,
                             double vt) {
  Event e;
  e.kind = kind;
  e.peer = peer;
  e.tag = tag;
  e.name = name;
  e.value = value;
  e.vtime = owner_.vt_offset_ + vt;
  e.wtime = owner_.wall_now();
  events_.push_back(e);
}

inline std::uint32_t RankTracer::intern(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

inline void RankTracer::name_tag(int tag, std::string_view name) {
  owner_.set_tag_name(tag, std::string(name));
}

}  // namespace bh::obs
