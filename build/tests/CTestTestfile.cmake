# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/multipole_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/dataship_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/bem_test[1]_include.cmake")
include("/root/repo/build/tests/accuracy_test[1]_include.cmake")
include("/root/repo/build/tests/mp_stress_test[1]_include.cmake")
