file(REMOVE_RECURSE
  "CMakeFiles/bem_test.dir/bem_test.cpp.o"
  "CMakeFiles/bem_test.dir/bem_test.cpp.o.d"
  "bem_test"
  "bem_test.pdb"
  "bem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
