# Empty dependencies file for bem_test.
# This may be replaced when dependencies are built.
