# Empty dependencies file for accuracy_test.
# This may be replaced when dependencies are built.
