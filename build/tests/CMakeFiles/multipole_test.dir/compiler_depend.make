# Empty compiler generated dependencies file for multipole_test.
# This may be replaced when dependencies are built.
