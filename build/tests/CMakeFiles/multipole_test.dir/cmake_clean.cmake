file(REMOVE_RECURSE
  "CMakeFiles/multipole_test.dir/multipole_test.cpp.o"
  "CMakeFiles/multipole_test.dir/multipole_test.cpp.o.d"
  "multipole_test"
  "multipole_test.pdb"
  "multipole_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
