# Empty dependencies file for dataship_test.
# This may be replaced when dependencies are built.
