file(REMOVE_RECURSE
  "CMakeFiles/dataship_test.dir/dataship_test.cpp.o"
  "CMakeFiles/dataship_test.dir/dataship_test.cpp.o.d"
  "dataship_test"
  "dataship_test.pdb"
  "dataship_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
