# Empty compiler generated dependencies file for ablate_top_tree.
# This may be replaced when dependencies are built.
