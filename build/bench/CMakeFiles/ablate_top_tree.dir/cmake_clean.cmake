file(REMOVE_RECURSE
  "CMakeFiles/ablate_top_tree.dir/ablate_top_tree.cpp.o"
  "CMakeFiles/ablate_top_tree.dir/ablate_top_tree.cpp.o.d"
  "ablate_top_tree"
  "ablate_top_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_top_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
