# Empty compiler generated dependencies file for ablate_branch_lookup.
# This may be replaced when dependencies are built.
