file(REMOVE_RECURSE
  "CMakeFiles/ablate_branch_lookup.dir/ablate_branch_lookup.cpp.o"
  "CMakeFiles/ablate_branch_lookup.dir/ablate_branch_lookup.cpp.o.d"
  "ablate_branch_lookup"
  "ablate_branch_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_branch_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
