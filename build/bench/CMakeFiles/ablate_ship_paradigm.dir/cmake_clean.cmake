file(REMOVE_RECURSE
  "CMakeFiles/ablate_ship_paradigm.dir/ablate_ship_paradigm.cpp.o"
  "CMakeFiles/ablate_ship_paradigm.dir/ablate_ship_paradigm.cpp.o.d"
  "ablate_ship_paradigm"
  "ablate_ship_paradigm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ship_paradigm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
