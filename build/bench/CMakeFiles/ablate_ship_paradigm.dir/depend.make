# Empty dependencies file for ablate_ship_paradigm.
# This may be replaced when dependencies are built.
