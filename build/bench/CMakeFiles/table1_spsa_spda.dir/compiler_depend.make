# Empty compiler generated dependencies file for table1_spsa_spda.
# This may be replaced when dependencies are built.
