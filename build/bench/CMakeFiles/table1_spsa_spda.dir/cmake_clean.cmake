file(REMOVE_RECURSE
  "CMakeFiles/table1_spsa_spda.dir/table1_spsa_spda.cpp.o"
  "CMakeFiles/table1_spsa_spda.dir/table1_spsa_spda.cpp.o.d"
  "table1_spsa_spda"
  "table1_spsa_spda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spsa_spda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
