# Empty dependencies file for table7_alpha.
# This may be replaced when dependencies are built.
