
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_alpha.cpp" "bench/CMakeFiles/table7_alpha.dir/table7_alpha.cpp.o" "gcc" "bench/CMakeFiles/table7_alpha.dir/table7_alpha.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/bh_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/bh_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/bh_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/multipole/CMakeFiles/bh_multipole.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
