file(REMOVE_RECURSE
  "CMakeFiles/table7_alpha.dir/table7_alpha.cpp.o"
  "CMakeFiles/table7_alpha.dir/table7_alpha.cpp.o.d"
  "table7_alpha"
  "table7_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
