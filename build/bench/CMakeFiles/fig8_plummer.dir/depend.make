# Empty dependencies file for fig8_plummer.
# This may be replaced when dependencies are built.
