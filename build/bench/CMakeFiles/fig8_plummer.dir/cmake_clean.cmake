file(REMOVE_RECURSE
  "CMakeFiles/fig8_plummer.dir/fig8_plummer.cpp.o"
  "CMakeFiles/fig8_plummer.dir/fig8_plummer.cpp.o.d"
  "fig8_plummer"
  "fig8_plummer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_plummer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
