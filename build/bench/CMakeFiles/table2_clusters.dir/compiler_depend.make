# Empty compiler generated dependencies file for table2_clusters.
# This may be replaced when dependencies are built.
