file(REMOVE_RECURSE
  "CMakeFiles/table2_clusters.dir/table2_clusters.cpp.o"
  "CMakeFiles/table2_clusters.dir/table2_clusters.cpp.o.d"
  "table2_clusters"
  "table2_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
