# Empty dependencies file for ablate_bin_size.
# This may be replaced when dependencies are built.
