file(REMOVE_RECURSE
  "CMakeFiles/ablate_bin_size.dir/ablate_bin_size.cpp.o"
  "CMakeFiles/ablate_bin_size.dir/ablate_bin_size.cpp.o.d"
  "ablate_bin_size"
  "ablate_bin_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bin_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
