file(REMOVE_RECURSE
  "CMakeFiles/ablate_kruskal_weiss.dir/ablate_kruskal_weiss.cpp.o"
  "CMakeFiles/ablate_kruskal_weiss.dir/ablate_kruskal_weiss.cpp.o.d"
  "ablate_kruskal_weiss"
  "ablate_kruskal_weiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_kruskal_weiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
