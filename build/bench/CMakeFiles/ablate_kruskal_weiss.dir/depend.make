# Empty dependencies file for ablate_kruskal_weiss.
# This may be replaced when dependencies are built.
