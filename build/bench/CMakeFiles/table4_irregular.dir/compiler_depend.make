# Empty compiler generated dependencies file for table4_irregular.
# This may be replaced when dependencies are built.
