file(REMOVE_RECURSE
  "CMakeFiles/table4_irregular.dir/table4_irregular.cpp.o"
  "CMakeFiles/table4_irregular.dir/table4_irregular.cpp.o.d"
  "table4_irregular"
  "table4_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
