# Empty compiler generated dependencies file for table3_phases.
# This may be replaced when dependencies are built.
