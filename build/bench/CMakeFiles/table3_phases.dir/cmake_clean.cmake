file(REMOVE_RECURSE
  "CMakeFiles/table3_phases.dir/table3_phases.cpp.o"
  "CMakeFiles/table3_phases.dir/table3_phases.cpp.o.d"
  "table3_phases"
  "table3_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
