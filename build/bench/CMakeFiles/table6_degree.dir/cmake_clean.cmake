file(REMOVE_RECURSE
  "CMakeFiles/table6_degree.dir/table6_degree.cpp.o"
  "CMakeFiles/table6_degree.dir/table6_degree.cpp.o.d"
  "table6_degree"
  "table6_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
