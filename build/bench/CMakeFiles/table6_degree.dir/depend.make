# Empty dependencies file for table6_degree.
# This may be replaced when dependencies are built.
