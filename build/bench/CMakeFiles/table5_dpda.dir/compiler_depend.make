# Empty compiler generated dependencies file for table5_dpda.
# This may be replaced when dependencies are built.
