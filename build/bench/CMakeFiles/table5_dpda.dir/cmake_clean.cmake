file(REMOVE_RECURSE
  "CMakeFiles/table5_dpda.dir/table5_dpda.cpp.o"
  "CMakeFiles/table5_dpda.dir/table5_dpda.cpp.o.d"
  "table5_dpda"
  "table5_dpda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dpda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
