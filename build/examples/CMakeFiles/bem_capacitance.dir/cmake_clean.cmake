file(REMOVE_RECURSE
  "CMakeFiles/bem_capacitance.dir/bem_capacitance.cpp.o"
  "CMakeFiles/bem_capacitance.dir/bem_capacitance.cpp.o.d"
  "bem_capacitance"
  "bem_capacitance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bem_capacitance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
