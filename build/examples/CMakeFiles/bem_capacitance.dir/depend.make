# Empty dependencies file for bem_capacitance.
# This may be replaced when dependencies are built.
