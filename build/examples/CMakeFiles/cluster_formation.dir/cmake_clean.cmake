file(REMOVE_RECURSE
  "CMakeFiles/cluster_formation.dir/cluster_formation.cpp.o"
  "CMakeFiles/cluster_formation.dir/cluster_formation.cpp.o.d"
  "cluster_formation"
  "cluster_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
