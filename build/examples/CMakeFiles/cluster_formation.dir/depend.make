# Empty dependencies file for cluster_formation.
# This may be replaced when dependencies are built.
