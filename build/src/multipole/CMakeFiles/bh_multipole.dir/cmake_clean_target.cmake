file(REMOVE_RECURSE
  "libbh_multipole.a"
)
