file(REMOVE_RECURSE
  "CMakeFiles/bh_multipole.dir/expansion.cpp.o"
  "CMakeFiles/bh_multipole.dir/expansion.cpp.o.d"
  "libbh_multipole.a"
  "libbh_multipole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_multipole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
