# Empty compiler generated dependencies file for bh_multipole.
# This may be replaced when dependencies are built.
