file(REMOVE_RECURSE
  "CMakeFiles/bh_mp.dir/runtime.cpp.o"
  "CMakeFiles/bh_mp.dir/runtime.cpp.o.d"
  "libbh_mp.a"
  "libbh_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
