# Empty compiler generated dependencies file for bh_mp.
# This may be replaced when dependencies are built.
