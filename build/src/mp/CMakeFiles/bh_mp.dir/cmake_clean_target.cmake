file(REMOVE_RECURSE
  "libbh_mp.a"
)
