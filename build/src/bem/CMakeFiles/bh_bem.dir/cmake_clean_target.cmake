file(REMOVE_RECURSE
  "libbh_bem.a"
)
