# Empty compiler generated dependencies file for bh_bem.
# This may be replaced when dependencies are built.
