file(REMOVE_RECURSE
  "CMakeFiles/bh_bem.dir/hmatvec.cpp.o"
  "CMakeFiles/bh_bem.dir/hmatvec.cpp.o.d"
  "libbh_bem.a"
  "libbh_bem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_bem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
