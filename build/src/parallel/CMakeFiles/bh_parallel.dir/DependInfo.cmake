
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/branch.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/branch.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/branch.cpp.o.d"
  "/root/repo/src/parallel/dataship.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/dataship.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/dataship.cpp.o.d"
  "/root/repo/src/parallel/decomposition.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/decomposition.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/decomposition.cpp.o.d"
  "/root/repo/src/parallel/dtree.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/dtree.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/dtree.cpp.o.d"
  "/root/repo/src/parallel/formulations.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/formulations.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/formulations.cpp.o.d"
  "/root/repo/src/parallel/funcship.cpp" "src/parallel/CMakeFiles/bh_parallel.dir/funcship.cpp.o" "gcc" "src/parallel/CMakeFiles/bh_parallel.dir/funcship.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/bh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/multipole/CMakeFiles/bh_multipole.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/bh_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/bh_mp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
