file(REMOVE_RECURSE
  "CMakeFiles/bh_parallel.dir/branch.cpp.o"
  "CMakeFiles/bh_parallel.dir/branch.cpp.o.d"
  "CMakeFiles/bh_parallel.dir/dataship.cpp.o"
  "CMakeFiles/bh_parallel.dir/dataship.cpp.o.d"
  "CMakeFiles/bh_parallel.dir/decomposition.cpp.o"
  "CMakeFiles/bh_parallel.dir/decomposition.cpp.o.d"
  "CMakeFiles/bh_parallel.dir/dtree.cpp.o"
  "CMakeFiles/bh_parallel.dir/dtree.cpp.o.d"
  "CMakeFiles/bh_parallel.dir/formulations.cpp.o"
  "CMakeFiles/bh_parallel.dir/formulations.cpp.o.d"
  "CMakeFiles/bh_parallel.dir/funcship.cpp.o"
  "CMakeFiles/bh_parallel.dir/funcship.cpp.o.d"
  "libbh_parallel.a"
  "libbh_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
