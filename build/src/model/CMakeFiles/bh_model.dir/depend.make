# Empty dependencies file for bh_model.
# This may be replaced when dependencies are built.
