file(REMOVE_RECURSE
  "libbh_model.a"
)
