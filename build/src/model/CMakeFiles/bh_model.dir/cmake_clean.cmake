file(REMOVE_RECURSE
  "CMakeFiles/bh_model.dir/distributions.cpp.o"
  "CMakeFiles/bh_model.dir/distributions.cpp.o.d"
  "libbh_model.a"
  "libbh_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
