file(REMOVE_RECURSE
  "libbh_tree.a"
)
