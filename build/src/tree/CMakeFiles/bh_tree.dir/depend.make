# Empty dependencies file for bh_tree.
# This may be replaced when dependencies are built.
