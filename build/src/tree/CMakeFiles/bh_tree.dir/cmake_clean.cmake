file(REMOVE_RECURSE
  "CMakeFiles/bh_tree.dir/build.cpp.o"
  "CMakeFiles/bh_tree.dir/build.cpp.o.d"
  "CMakeFiles/bh_tree.dir/traverse.cpp.o"
  "CMakeFiles/bh_tree.dir/traverse.cpp.o.d"
  "libbh_tree.a"
  "libbh_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
