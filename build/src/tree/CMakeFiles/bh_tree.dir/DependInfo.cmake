
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/build.cpp" "src/tree/CMakeFiles/bh_tree.dir/build.cpp.o" "gcc" "src/tree/CMakeFiles/bh_tree.dir/build.cpp.o.d"
  "/root/repo/src/tree/traverse.cpp" "src/tree/CMakeFiles/bh_tree.dir/traverse.cpp.o" "gcc" "src/tree/CMakeFiles/bh_tree.dir/traverse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/bh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/multipole/CMakeFiles/bh_multipole.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
