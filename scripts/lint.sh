#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in src/, against a dedicated compile database in
# build-tidy/. Usage:
#
#   scripts/lint.sh [--require] [extra clang-tidy args...]
#
# Exits non-zero on any finding. When no clang-tidy binary is available
# (the default toolchain here is gcc-only), prints a notice and exits 0 so
# the script is safe to call unconditionally from pre-push hooks --
# UNLESS --require is given, in which case a missing clang-tidy is a hard
# failure. CI passes --require so the lint gate can never silently
# evaporate when the runner image loses the package.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi

tidy=""
for cand in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "${cand}" >/dev/null 2>&1; then
    tidy="${cand}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  if [[ "${require}" -eq 1 ]]; then
    echo "lint.sh: clang-tidy not found on PATH and --require was given;" \
         "failing (install clang-tidy)." >&2
    exit 1
  fi
  echo "lint.sh: clang-tidy not found on PATH; skipping lint (install" \
       "clang-tidy to enable, or pass --require to make this an error)." >&2
  exit 0
fi

# A minimal tree is enough for a compile database covering src/.
cmake -S . -B build-tidy \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DBH_BUILD_TESTS=OFF -DBH_BUILD_BENCH=OFF -DBH_BUILD_EXAMPLES=OFF \
  >/dev/null

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "lint.sh: ${tidy} over ${#sources[@]} translation units"
"${tidy}" -p build-tidy --quiet "$@" "${sources[@]}"
echo "lint.sh: clean"
