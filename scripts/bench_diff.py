#!/usr/bin/env python3
"""Compare two bh.bench.v1 documents and gate on phase-time regressions.

This is the CI side of the bench registry (bench/emit.hpp): committed
BENCH_*.json files are baselines, a fresh --bench-json run is the candidate,
and this script fails (exit 1) when any phase regressed beyond the gate.
It is intentionally dependency-free (stdlib json only) so CI can run it
without building anything; `bh_analyze diff` is the C++ twin with the same
semantics.

Usage:
  scripts/bench_diff.py BASELINE CANDIDATE [--gate PCT] [--floor SEC]

Gate semantics:
  * scenarios are matched by name; phases by name within a scenario, plus a
    synthetic "iter_time" row for the whole iteration;
  * a phase counts as a regression when candidate > baseline * (1 + gate%)
    AND the baseline time is >= --floor virtual seconds. The floor exists
    because the modeled times of tiny phases (microseconds) jitter by
    thread-interleaving noise in the async protocols; percentage gates on
    them are meaningless.
  * scenarios present on only one side are reported but never gate (tables
    legitimately grow new rows).

The default gate is 10% with a 1e-4 s floor.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bh.bench.v1":
        sys.exit(f"{path}: not a bh.bench.v1 document "
                 f"(schema={doc.get('schema')!r})")
    return doc


def rows(doc):
    """{scenario name: {phase name: seconds}} including 'iter_time'."""
    out = {}
    for s in doc.get("scenarios", []):
        phases = {"iter_time": float(s.get("iter_time", 0.0))}
        for name, t in (s.get("phases") or {}).items():
            phases[name] = float(t)
        out[s.get("name", "?")] = phases
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Gate bh.bench.v1 candidate runs against a baseline.")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--gate", type=float, default=10.0,
                    help="max tolerated regression, percent [10]")
    ap.add_argument("--floor", type=float, default=1e-4,
                    help="ignore phases with baseline time below this many "
                         "virtual seconds [1e-4]")
    args = ap.parse_args()

    base = rows(load(args.baseline))
    cand = rows(load(args.candidate))

    worst = (0.0, None)  # (pct, "scenario: phase")
    for name in sorted(base):
        if name not in cand:
            print(f"only in baseline: {name}")
            continue
        print(name)
        for phase, a in sorted(base[name].items()):
            b = cand[name].get(phase, 0.0)
            pct = 100.0 * (b - a) / a if a > 0 else 0.0
            mark = ""
            if a >= args.floor and pct > args.gate:
                mark = "  <-- REGRESSION"
                if pct > worst[0]:
                    worst = (pct, f"{name}: {phase}")
            print(f"  {phase:<28} {a:12.6g} {b:12.6g} {pct:+8.2f}%{mark}")
    for name in sorted(cand):
        if name not in base:
            print(f"only in candidate: {name}")

    if worst[1] is not None:
        print(f"\nFAIL: {worst[1]} regressed {worst[0]:.2f}% "
              f"(gate {args.gate:.2f}%)")
        return 1
    print(f"\nOK: no phase regressed beyond {args.gate:.2f}% "
          f"(floor {args.floor:g} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
