#!/usr/bin/env python3
"""Compare two bh.bench.v1 documents and gate on phase-time regressions.

This is the CI side of the bench registry (bench/emit.hpp): committed
BENCH_*.json files are baselines, a fresh --bench-json run is the candidate,
and this script fails (exit 1) when any phase regressed beyond the gate.
It is intentionally dependency-free (stdlib json only) so CI can run it
without building anything; `bh_analyze diff` is the C++ twin with the same
semantics.

Usage:
  scripts/bench_diff.py BASELINE CANDIDATE [CANDIDATE ...]
                        [--gate PCT] [--floor SEC]
                        [--gate-wall PCT] [--wall-floor SEC]

Gate semantics:
  * scenarios are matched by name; phases by name within a scenario, plus a
    synthetic "iter_time" row for the whole iteration;
  * several CANDIDATE files are reduced to one candidate by per-scenario,
    per-phase median. This is the noise armor for wall gating: run the
    bench 3x, gate on the median, and a single scheduler hiccup cannot
    fail CI;
  * a phase counts as a regression when candidate > baseline * (1 + gate%)
    AND the baseline time is >= --floor virtual seconds. The floor exists
    because the modeled times of tiny phases (microseconds) jitter by
    thread-interleaving noise in the async protocols; percentage gates on
    them are meaningless.
  * scenarios present on only one side are reported but never gate (tables
    legitimately grow new rows);
  * scenarios tagged scheme="wall" (micro_kernels host timings) are listed
    for information and by default never gate: wall-clock moves with the
    CI runner, not with the code. --gate-wall PCT opts wall rows into a
    deliberately loose gate (CI uses 30% on a median-of-3) so an
    order-of-magnitude kernel regression still fails while runner noise
    passes. Baseline wall rows below --wall-floor host seconds never gate.
    Cross-run wall trends belong to bh_trend;
  * peak_rss_bytes / alloc_count (newer registries) are printed
    informationally when both sides carry them and never gate. Either side
    may lack the keys -- pre-schema baselines diff cleanly against new
    candidates and vice versa.

The default gate is 10% with a 1e-4 s floor; wall rows gate only when
--gate-wall is given (wall floor default 1e-9 s: micro-kernel iterations
are nanoseconds, so the virtual-time floor would suppress them all).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bh.bench.v1":
        sys.exit(f"{path}: not a bh.bench.v1 document "
                 f"(schema={doc.get('schema')!r})")
    return doc


def rows(doc):
    """{scenario name: {phase name: seconds}} including 'iter_time'.

    Wall-scheme rows (host-clock micro_kernels timings) are excluded from
    gating entirely; they are returned separately as {name: seconds}.
    """
    out = {}
    wall = {}
    for s in doc.get("scenarios", []):
        name = s.get("name", "?")
        if s.get("scheme") == "wall":
            wall[name] = float(s.get("iter_time", 0.0))
            continue
        phases = {"iter_time": float(s.get("iter_time", 0.0))}
        for phase, t in (s.get("phases") or {}).items():
            phases[phase] = float(t)
        out[name] = phases
    return out, wall


def mem(doc):
    """{scenario name: (peak_rss_bytes, alloc_count)} where recorded."""
    out = {}
    for s in doc.get("scenarios", []):
        if "peak_rss_bytes" in s or "alloc_count" in s:
            out[s.get("name", "?")] = (s.get("peak_rss_bytes", 0),
                                       s.get("alloc_count", 0))
    return out


def median(values):
    vs = sorted(values)
    n = len(vs)
    return vs[n // 2] if n % 2 else 0.5 * (vs[n // 2 - 1] + vs[n // 2])


def merge_rows(docs):
    """Reduce several candidate documents to per-phase medians.

    Returns the same (modeled, wall) shape as rows(). A phase missing from
    some candidates is the median of the runs that have it.
    """
    merged, merged_wall = {}, {}
    all_rows = [rows(d) for d in docs]
    for modeled, wall in all_rows:
        for name, phases in modeled.items():
            dst = merged.setdefault(name, {})
            for phase, t in phases.items():
                dst.setdefault(phase, []).append(t)
        for name, t in wall.items():
            merged_wall.setdefault(name, []).append(t)
    return ({n: {p: median(ts) for p, ts in ph.items()}
             for n, ph in merged.items()},
            {n: median(ts) for n, ts in merged_wall.items()})


def main():
    ap = argparse.ArgumentParser(
        description="Gate bh.bench.v1 candidate runs against a baseline.")
    ap.add_argument("baseline")
    ap.add_argument("candidate", nargs="+",
                    help="one or more candidate runs; several are reduced "
                         "to a per-phase median before gating")
    ap.add_argument("--gate", type=float, default=10.0,
                    help="max tolerated regression, percent [10]")
    ap.add_argument("--floor", type=float, default=1e-4,
                    help="ignore phases with baseline time below this many "
                         "virtual seconds [1e-4]")
    ap.add_argument("--gate-wall", type=float, default=None, metavar="PCT",
                    help="also gate scheme=\"wall\" rows at this percent "
                         "(default: wall rows are informational only)")
    ap.add_argument("--wall-floor", type=float, default=1e-9,
                    help="ignore wall rows with baseline time below this "
                         "many host seconds [1e-9]")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_docs = [load(p) for p in args.candidate]
    base, base_wall = rows(base_doc)
    cand, cand_wall = merge_rows(cand_docs)
    if len(cand_docs) > 1:
        print(f"candidate = per-phase median of {len(cand_docs)} runs")

    worst = (0.0, None)  # (pct, "scenario: phase")
    for name in sorted(base):
        if name not in cand:
            print(f"only in baseline: {name}")
            continue
        print(name)
        for phase, a in sorted(base[name].items()):
            b = cand[name].get(phase, 0.0)
            pct = 100.0 * (b - a) / a if a > 0 else 0.0
            mark = ""
            if a >= args.floor and pct > args.gate:
                mark = "  <-- REGRESSION"
                if pct > worst[0]:
                    worst = (pct, f"{name}: {phase}")
            print(f"  {phase:<28} {a:12.6g} {b:12.6g} {pct:+8.2f}%{mark}")
    for name in sorted(cand):
        if name not in base:
            print(f"only in candidate: {name}")

    wall_worst = (0.0, None)
    shared_wall = sorted(set(base_wall) & set(cand_wall))
    if shared_wall:
        if args.gate_wall is not None:
            print(f"\nwall-clock rows (gated at {args.gate_wall:.2f}%, "
                  f"floor {args.wall_floor:g} s):")
        else:
            print("\nwall-clock rows (informational, never gated):")
        for name in shared_wall:
            a, b = base_wall[name], cand_wall[name]
            pct = 100.0 * (b - a) / a if a > 0 else 0.0
            mark = ""
            if (args.gate_wall is not None and a >= args.wall_floor
                    and pct > args.gate_wall):
                mark = "  <-- REGRESSION"
                if pct > wall_worst[0]:
                    wall_worst = (pct, f"{name}: wall")
            print(f"  {name:<40} {a:12.6g} {b:12.6g} {pct:+8.2f}%{mark}")

    base_mem, cand_mem = mem(base_doc), mem(cand_docs[0])
    shared_mem = sorted(set(base_mem) & set(cand_mem))
    if shared_mem:
        print("\nmemory (informational, never gated; "
              "peak_rss_bytes / alloc_count):")
        for name in shared_mem:
            (ra, aa), (rb, ab) = base_mem[name], cand_mem[name]
            print(f"  {name:<40} rss {ra} -> {rb}   allocs {aa} -> {ab}")

    failed = False
    if worst[1] is not None:
        print(f"\nFAIL: {worst[1]} regressed {worst[0]:.2f}% "
              f"(gate {args.gate:.2f}%)")
        failed = True
    if wall_worst[1] is not None:
        print(f"\nFAIL: {wall_worst[1]} regressed {wall_worst[0]:.2f}% "
              f"(wall gate {args.gate_wall:.2f}%)")
        failed = True
    if failed:
        return 1
    print(f"\nOK: no phase regressed beyond {args.gate:.2f}% "
          f"(floor {args.floor:g} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
